/**
 * @file
 * Tests for the baseline tag-based MESI cache.
 */

#include <gtest/gtest.h>

#include "baseline/classic_cache.hh"

namespace d2m
{
namespace
{

TEST(ClassicCache, MissThenHit)
{
    SimObject parent("sys");
    ClassicCache cache("l1", &parent, 64, 8, 6);
    EXPECT_EQ(cache.lookup(0x10), nullptr);
    ClassicLine &slot = cache.victimFor(0x10);
    cache.install(slot, 0x10, Mesi::S, 42);
    ClassicLine *line = cache.lookup(0x10);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->value, 42u);
    EXPECT_EQ(line->state, Mesi::S);
}

TEST(ClassicCache, ProbeDoesNotTouchRecency)
{
    SimObject parent("sys");
    ClassicCache cache("l1", &parent, 8, 4, 6);  // 2 sets
    // Fill set 0 with lines 0, 2, 4, 6.
    for (Addr a : {0x0ull, 0x2ull, 0x4ull, 0x6ull}) {
        ClassicLine &s = cache.victimFor(a);
        cache.install(s, a, Mesi::S, 0);
    }
    cache.probe(0x0);  // probe must NOT refresh line 0
    ClassicLine &victim = cache.victimFor(0x8);
    EXPECT_EQ(victim.lineAddr, 0x0u);
}

TEST(ClassicCache, LookupRefreshesRecency)
{
    SimObject parent("sys");
    ClassicCache cache("l1", &parent, 8, 4, 6);
    for (Addr a : {0x0ull, 0x2ull, 0x4ull, 0x6ull}) {
        ClassicLine &s = cache.victimFor(a);
        cache.install(s, a, Mesi::S, 0);
    }
    cache.lookup(0x0);
    ClassicLine &victim = cache.victimFor(0x8);
    EXPECT_EQ(victim.lineAddr, 0x2u);
}

TEST(ClassicCache, DirectoryFieldsResetOnInstall)
{
    SimObject parent("sys");
    ClassicCache llc("llc", &parent, 64, 8, 6);
    ClassicLine &slot = llc.victimFor(0x20);
    llc.install(slot, 0x20, Mesi::S, 1);
    slot.sharers = 0xf;
    slot.owner = 2;
    slot.invalidate();
    ClassicLine &again = llc.victimFor(0x20);
    llc.install(again, 0x20, Mesi::S, 2);
    EXPECT_EQ(again.sharers, 0u);
    EXPECT_EQ(again.owner, invalidNode);
}

TEST(ClassicCache, IsMru)
{
    SimObject parent("sys");
    ClassicCache cache("l1", &parent, 8, 4, 6);
    for (Addr a : {0x0ull, 0x2ull}) {
        ClassicLine &s = cache.victimFor(a);
        cache.install(s, a, Mesi::S, 0);
    }
    cache.lookup(0x0);
    EXPECT_TRUE(cache.isMru(*cache.probe(0x0)));
    EXPECT_FALSE(cache.isMru(*cache.probe(0x2)));
}

TEST(ClassicCache, ForEachLine)
{
    SimObject parent("sys");
    ClassicCache cache("l1", &parent, 64, 8, 6);
    for (Addr a : {0x1ull, 0x2ull, 0x3ull}) {
        ClassicLine &s = cache.victimFor(a);
        cache.install(s, a, Mesi::M, a);
    }
    unsigned count = 0;
    cache.forEachLine([&](const ClassicLine &l) {
        ++count;
        EXPECT_EQ(l.state, Mesi::M);
    });
    EXPECT_EQ(count, 3u);
}

} // namespace
} // namespace d2m
