/**
 * @file
 * Tests for the replacement policies, including the cost-aware LRU
 * that the metadata stores use to prefer cheap victims (Section II-A).
 * Policies consume a contiguous slice of per-way state — the packed
 * parallel-array layout the stores keep (no pointer indirection).
 */

#include <gtest/gtest.h>

#include "mem/replacement.hh"

namespace d2m
{
namespace
{

TEST(Replacement, LruPicksOldest)
{
    LruPolicy lru;
    std::vector<ReplState> ways(4);
    for (unsigned i = 0; i < 4; ++i)
        lru.install(ways[i], i + 1);
    lru.touch(ways[0], 10);  // way 0 becomes newest
    EXPECT_EQ(lru.victim(ways.data(), 4, nullptr), 1u);  // way 1 oldest
    lru.touch(ways[1], 11);
    EXPECT_EQ(lru.victim(ways.data(), 4, nullptr), 2u);
}

TEST(Replacement, RandomIsDeterministicPerSeed)
{
    RandomPolicy a(5), b(5);
    std::vector<ReplState> ways(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.victim(ways.data(), 8, nullptr),
                  b.victim(ways.data(), 8, nullptr));
    }
}

TEST(Replacement, RandomCoversAllWays)
{
    RandomPolicy p(7);
    std::vector<ReplState> ways(4);
    std::vector<bool> seen(4, false);
    for (int i = 0; i < 200; ++i)
        seen[p.victim(ways.data(), 4, nullptr)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Replacement, CostAwarePrefersCheapVictims)
{
    CostAwareLruPolicy p(/*cost_weight=*/2.0);
    std::vector<ReplState> ways(4);
    for (unsigned i = 0; i < 4; ++i)
        p.install(ways[i], i + 1);
    // Way 0 is oldest but very expensive; way 3 newest but free:
    // cost * 2 + recency_rank decides.
    auto cost = [](std::uint32_t way) {
        return way == 0 ? 100.0 : 0.0;
    };
    EXPECT_EQ(p.victim(ways.data(), 4, cost), 1u);  // oldest cheap one
}

TEST(Replacement, CostAwareDegradesToLruOnEqualCost)
{
    CostAwareLruPolicy p;
    std::vector<ReplState> ways(4);
    for (unsigned i = 0; i < 4; ++i)
        p.install(ways[i], 10 - i);  // way 3 oldest
    auto flat = [](std::uint32_t) { return 1.0; };
    EXPECT_EQ(p.victim(ways.data(), 4, flat), 3u);
}

TEST(Replacement, FactoryProducesAllKinds)
{
    EXPECT_NE(makeReplacement(ReplKind::LRU), nullptr);
    EXPECT_NE(makeReplacement(ReplKind::Random, 3), nullptr);
    EXPECT_NE(makeReplacement(ReplKind::CostAwareLru), nullptr);
}

} // namespace
} // namespace d2m
