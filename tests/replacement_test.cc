/**
 * @file
 * Tests for the replacement policies, including the cost-aware LRU
 * that the metadata stores use to prefer cheap victims (Section II-A).
 */

#include <gtest/gtest.h>

#include "mem/replacement.hh"

namespace d2m
{
namespace
{

std::vector<ReplState *>
ptrs(std::vector<ReplState> &v)
{
    std::vector<ReplState *> out;
    for (auto &s : v)
        out.push_back(&s);
    return out;
}

TEST(Replacement, LruPicksOldest)
{
    LruPolicy lru;
    std::vector<ReplState> ways(4);
    for (unsigned i = 0; i < 4; ++i)
        lru.install(ways[i], i + 1);
    lru.touch(ways[0], 10);  // way 0 becomes newest
    auto w = ptrs(ways);
    EXPECT_EQ(lru.victim(w, nullptr), 1u);  // way 1 now oldest
    lru.touch(ways[1], 11);
    EXPECT_EQ(lru.victim(w, nullptr), 2u);
}

TEST(Replacement, RandomIsDeterministicPerSeed)
{
    RandomPolicy a(5), b(5);
    std::vector<ReplState> ways(8);
    auto w = ptrs(ways);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.victim(w, nullptr), b.victim(w, nullptr));
}

TEST(Replacement, RandomCoversAllWays)
{
    RandomPolicy p(7);
    std::vector<ReplState> ways(4);
    auto w = ptrs(ways);
    std::vector<bool> seen(4, false);
    for (int i = 0; i < 200; ++i)
        seen[p.victim(w, nullptr)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Replacement, CostAwarePrefersCheapVictims)
{
    CostAwareLruPolicy p(/*cost_weight=*/2.0);
    std::vector<ReplState> ways(4);
    for (unsigned i = 0; i < 4; ++i)
        p.install(ways[i], i + 1);
    auto w = ptrs(ways);
    // Way 0 is oldest but very expensive; way 3 newest but free:
    // cost * 2 + recency_rank decides.
    auto cost = [](std::uint32_t way) {
        return way == 0 ? 100.0 : 0.0;
    };
    EXPECT_EQ(p.victim(w, cost), 1u);  // oldest of the cheap ones
}

TEST(Replacement, CostAwareDegradesToLruOnEqualCost)
{
    CostAwareLruPolicy p;
    std::vector<ReplState> ways(4);
    for (unsigned i = 0; i < 4; ++i)
        p.install(ways[i], 10 - i);  // way 3 oldest
    auto w = ptrs(ways);
    auto flat = [](std::uint32_t) { return 1.0; };
    EXPECT_EQ(p.victim(w, flat), 3u);
}

TEST(Replacement, FactoryProducesAllKinds)
{
    EXPECT_NE(makeReplacement(ReplKind::LRU), nullptr);
    EXPECT_NE(makeReplacement(ReplKind::Random, 3), nullptr);
    EXPECT_NE(makeReplacement(ReplKind::CostAwareLru), nullptr);
}

} // namespace
} // namespace d2m
