/**
 * @file
 * Tests for the multicore driver: warmup reset semantics, golden-value
 * checking, and late-hit accounting.
 */

#include <gtest/gtest.h>

#include "cpu/multicore.hh"
#include "d2m/d2m_system.hh"
#include "harness/configs.hh"
#include "workload/suites.hh"

namespace d2m
{
namespace
{

WorkloadParams
tinyWorkload()
{
    WorkloadParams p;
    p.instructionsPerCore = 10'000;
    p.sharedFootprint = 64 * 1024;
    p.sharedFraction = 0.2;
    p.seed = 3;
    return p;
}

std::vector<std::unique_ptr<AccessStream>>
streamsFor(const WorkloadParams &p, unsigned cores)
{
    std::vector<std::unique_ptr<AccessStream>> v;
    for (unsigned c = 0; c < cores; ++c)
        v.push_back(std::make_unique<SyntheticStream>(p, c, 64));
    return v;
}

TEST(Multicore, RunsToCompletion)
{
    auto sys = makeSystem(ConfigKind::D2mNsR);
    auto streams = streamsFor(tinyWorkload(), 4);
    const RunResult r = runMulticore(*sys, streams);
    EXPECT_EQ(r.instructions, 4u * 10'000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.valueErrors, 0u);
}

TEST(Multicore, WarmupResetsCountersButKeepsState)
{
    auto cold = makeSystem(ConfigKind::D2mFs);
    auto warm = makeSystem(ConfigKind::D2mFs);

    auto p = tinyWorkload();
    auto cold_streams = streamsFor(p, 4);
    const RunResult cold_r = runMulticore(*cold, cold_streams);

    RunOptions opts;
    opts.warmupInstsPerCore = 5'000;
    auto warm_streams = streamsFor(p, 4);
    const RunResult warm_r = runMulticore(*warm, warm_streams, opts);

    // Measured instructions exclude warmup.
    EXPECT_LT(warm_r.instructions, cold_r.instructions);
    EXPECT_GT(warm_r.instructions, 0u);
    EXPECT_LT(warm_r.cycles, cold_r.cycles);
    // A warmed hierarchy misses less per instruction than a cold one.
    auto *cs = dynamic_cast<D2mSystem *>(cold.get());
    auto *ws = dynamic_cast<D2mSystem *>(warm.get());
    const double cold_mpki =
        static_cast<double>(cs->hierStats().l1dMisses.value()) /
        cold_r.instructions;
    const double warm_mpki =
        static_cast<double>(ws->hierStats().l1dMisses.value()) /
        warm_r.instructions;
    EXPECT_LT(warm_mpki, cold_mpki * 1.05);
    EXPECT_EQ(warm_r.valueErrors, 0u);
}

TEST(Multicore, LateHitsAppearUnderMlp)
{
    // Streaming workloads produce hit-under-miss merges: consecutive
    // word accesses to a just-missed line land in its miss window.
    WorkloadParams p = tinyWorkload();
    p.instructionsPerCore = 30'000;
    p.streamFraction = 0.9;
    p.stackFraction = 0.0;
    p.sharedFraction = 0.0;
    p.privateFootprint = 8 << 20;
    auto sys = makeSystem(ConfigKind::Base2L);
    auto streams = streamsFor(p, 4);
    const RunResult r = runMulticore(*sys, streams);
    EXPECT_GT(r.lateHitsD, 0u);
}

TEST(Multicore, AllConfigsAgreeOnGoldenValues)
{
    // The same workload must produce zero value errors on every
    // system (each checks against its own interleaving order).
    auto p = tinyWorkload();
    for (ConfigKind kind : allConfigs()) {
        auto sys = makeSystem(kind);
        auto streams = streamsFor(p, 4);
        const RunResult r = runMulticore(*sys, streams);
        EXPECT_EQ(r.valueErrors, 0u) << configKindName(kind)
                                     << ": " << r.firstError;
    }
}

TEST(Multicore, InvariantChecksRun)
{
    auto sys = makeSystem(ConfigKind::D2mNsR);
    auto streams = streamsFor(tinyWorkload(), 4);
    RunOptions opts;
    opts.invariantCheckPeriod = 1'000;
    const RunResult r = runMulticore(*sys, streams, opts);
    EXPECT_EQ(r.invariantErrors, 0u) << r.firstError;
}

} // namespace
} // namespace d2m
