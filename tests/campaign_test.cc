/**
 * @file
 * Campaign fault isolation: a run that fatal()s, stalls, or drains
 * must be recorded as failed/timeout/abandoned while the rest of the
 * grid completes; bounded retries rerun only the broken cell
 * (DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

#include "common/logging.hh"
#include "harness/runner.hh"
#include "harness/watchdog.hh"

namespace d2m
{
namespace
{

std::vector<NamedWorkload>
smallWorkloads()
{
    WorkloadParams p;
    p.instructionsPerCore = 1'500;
    std::vector<NamedWorkload> v;
    for (int i = 0; i < 3; ++i) {
        p.seed = 100 + i;
        v.push_back({"ctest", "wl" + std::to_string(i), p});
    }
    return v;
}

SweepOptions
campaignOptions()
{
    SweepOptions opts;
    opts.verbose = false;
    opts.warmupInstsPerCore = 500;
    opts.jobs = 1;
    opts.runTimeoutMs = 0;  // no watchdog unless a test enables it
    opts.runRetries = 0;
    return opts;
}

const std::vector<ConfigKind> kTwoConfigs = {ConfigKind::Base2L,
                                             ConfigKind::D2mFs};

TEST(AbortCapture, ConvertsFatalToException)
{
    ScopedAbortCapture capture;
    ASSERT_TRUE(ScopedAbortCapture::active());
    bool caught = false;
    try {
        fatal("deliberate test failure %d", 42);
    } catch (const RunAbortError &e) {
        caught = true;
        EXPECT_NE(std::string(e.what()).find("deliberate test failure 42"),
                  std::string::npos);
        EXPECT_FALSE(e.isPanic());
    }
    EXPECT_TRUE(caught);
}

TEST(AbortCapture, ConvertsPanicToException)
{
    ScopedAbortCapture capture;
    EXPECT_THROW(panic("test panic"), RunAbortError);
    // Depth unwinds with the scope.
}

TEST(AbortCapture, InactiveOutsideScope)
{
    EXPECT_FALSE(ScopedAbortCapture::active());
    {
        ScopedAbortCapture outer;
        ScopedAbortCapture inner;
        EXPECT_TRUE(ScopedAbortCapture::active());
    }
    EXPECT_FALSE(ScopedAbortCapture::active());
}

TEST(CampaignIsolation, FatalRunFailsAloneGridCompletes)
{
    auto opts = campaignOptions();
    opts.preRunHook = [](const NamedWorkload &wl, unsigned) {
        if (wl.name == "wl1")
            fatal("injected failure in %s", wl.name.c_str());
    };
    const auto workloads = smallWorkloads();
    const auto rows = runSweep(kTwoConfigs, workloads, opts);
    ASSERT_EQ(rows.size(), 6u);
    std::size_t failed = 0;
    for (const auto &m : rows) {
        if (m.benchmark == "wl1") {
            EXPECT_EQ(m.status, "failed");
            EXPECT_EQ(m.attempts, 1u);
            EXPECT_NE(m.errorMessage.find("injected failure"),
                      std::string::npos);
            EXPECT_EQ(m.instructions, 0u) << "failure rows zero-filled";
            ++failed;
        } else {
            EXPECT_EQ(m.status, "ok");
            EXPECT_GT(m.instructions, 0u);
        }
    }
    EXPECT_EQ(failed, kTwoConfigs.size());

    const SweepOutcome &o = lastSweepOutcome();
    EXPECT_EQ(o.total, 6u);
    EXPECT_EQ(o.executed, 6u);
    EXPECT_EQ(o.ok, 4u);
    EXPECT_EQ(o.failed, 2u);
    EXPECT_FALSE(o.interrupted);
    EXPECT_EQ(campaignExitCode(o), kCampaignExitFailed);
}

TEST(CampaignIsolation, ParallelGridSurvivesFatalRun)
{
    auto opts = campaignOptions();
    opts.jobs = 4;
    opts.preRunHook = [](const NamedWorkload &wl, unsigned) {
        if (wl.name == "wl0")
            fatal("injected parallel failure");
    };
    const auto rows = runSweep(kTwoConfigs, smallWorkloads(), opts);
    ASSERT_EQ(rows.size(), 6u);
    for (const auto &m : rows)
        EXPECT_EQ(m.status, m.benchmark == "wl0" ? "failed" : "ok");
    EXPECT_EQ(lastSweepOutcome().failed, 2u);
}

TEST(CampaignRetry, TransientFailureRetriedToSuccess)
{
    auto opts = campaignOptions();
    opts.runRetries = 1;
    opts.preRunHook = [](const NamedWorkload &wl, unsigned attempt) {
        if (wl.name == "wl2" && attempt == 0)
            fatal("transient failure");
    };
    const auto rows = runSweep(kTwoConfigs, smallWorkloads(), opts);
    for (const auto &m : rows) {
        EXPECT_EQ(m.status, "ok") << m.benchmark;
        EXPECT_EQ(m.attempts, m.benchmark == "wl2" ? 2u : 1u);
    }
    EXPECT_EQ(lastSweepOutcome().failed, 0u);
    EXPECT_EQ(campaignExitCode(lastSweepOutcome()), kCampaignExitClean);
}

TEST(CampaignRetry, RetriesAreBounded)
{
    std::atomic<unsigned> calls{0};
    auto opts = campaignOptions();
    opts.runRetries = 2;
    opts.preRunHook = [&](const NamedWorkload &wl, unsigned) {
        if (wl.name == "wl0") {
            calls.fetch_add(1);
            fatal("permanent failure");
        }
    };
    const std::vector<NamedWorkload> one = {smallWorkloads()[0]};
    const auto rows =
        runSweep({ConfigKind::Base2L}, one, opts);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, "failed");
    EXPECT_EQ(rows[0].attempts, 3u) << "1 try + 2 retries";
    EXPECT_EQ(calls.load(), 3u);
}

TEST(CampaignTimeout, StalledRunTimesOut)
{
    auto opts = campaignOptions();
    opts.runTimeoutMs = 50;
    opts.preRunHook = [](const NamedWorkload &wl, unsigned) {
        if (wl.name == "wl1") {
            // Simulate a stall: hold the cell with zero progress well
            // past the timeout; the watchdog cancels, and the run
            // aborts at its first progress poll.
            std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
    };
    const std::vector<NamedWorkload> two = {smallWorkloads()[0],
                                            smallWorkloads()[1]};
    const auto rows = runSweep({ConfigKind::Base2L}, two, opts);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].status, "ok");
    EXPECT_EQ(rows[1].status, "timeout");
    EXPECT_NE(rows[1].errorMessage.find("D2M_RUN_TIMEOUT"),
              std::string::npos);
    EXPECT_EQ(lastSweepOutcome().timeout, 1u);
    EXPECT_EQ(campaignExitCode(lastSweepOutcome()), kCampaignExitFailed);
}

TEST(CampaignTimeout, StallRetriedToSuccess)
{
    auto opts = campaignOptions();
    opts.runTimeoutMs = 50;
    opts.runRetries = 1;
    opts.preRunHook = [](const NamedWorkload &wl, unsigned attempt) {
        if (wl.name == "wl0" && attempt == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(400));
    };
    const std::vector<NamedWorkload> one = {smallWorkloads()[0]};
    const auto rows = runSweep({ConfigKind::Base2L}, one, opts);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, "ok");
    EXPECT_EQ(rows[0].attempts, 2u);
}

TEST(CampaignDrain, SigintAbandonsRemainingCells)
{
    std::atomic<unsigned> started{0};
    auto opts = campaignOptions();
    opts.preRunHook = [&](const NamedWorkload &, unsigned attempt) {
        if (attempt == 0 && started.fetch_add(1) + 1 == 2)
            std::raise(SIGINT);  // caught by the sweep's drain handler
    };
    const auto rows = runSweep(kTwoConfigs, smallWorkloads(), opts);
    const SweepOutcome o = lastSweepOutcome();
    resetDrain();  // don't poison later tests in this binary
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_TRUE(o.interrupted);
    // Cell 1 completed before the signal; cells after the in-flight
    // one are abandoned at attempt start, deterministically.
    EXPECT_GE(o.ok, 1u);
    EXPECT_GE(o.abandoned, 4u);
    EXPECT_EQ(campaignExitCode(o), kCampaignExitPartial);
    for (const auto &m : rows) {
        if (m.status == "abandoned") {
            EXPECT_EQ(m.instructions, 0u);
        }
    }
}

} // namespace
} // namespace d2m
