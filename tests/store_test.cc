/**
 * @file
 * Durable result store: record round-trips, last-record-wins
 * reloads, torn-line tolerance, and run-key stability/uniqueness
 * (DESIGN.md §13).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "harness/store.hh"
#include "workload/suites.hh"

namespace d2m
{
namespace
{

std::string
freshDir(const char *name)
{
    const std::string dir = testing::TempDir() + name;
    // Tests reuse temp dirs across runs; start from nothing.
    for (unsigned s = 0; s < ResultStore::kShards; ++s) {
        char shard[32];
        std::snprintf(shard, sizeof(shard), "/shard-%02u.jsonl", s);
        std::remove((dir + shard).c_str());
    }
    return dir;
}

NamedWorkload
testWorkload(std::uint64_t seed = 7)
{
    WorkloadParams p;
    p.instructionsPerCore = 1'000;
    p.seed = seed;
    return {"stest", "wl", p};
}

StoredRun
sampleRun(std::uint64_t keyHash, RunStatus status = RunStatus::Ok)
{
    StoredRun run;
    run.key.hash = keyHash;
    run.status = status;
    run.seed = 0xDEADBEEFCAFE0001ull;  // needs full 64-bit round-trip
    run.attempts = 2;
    run.error = status == RunStatus::Ok ? "" : "synthetic \"error\"";
    run.metrics.config = "Base-2L";
    run.metrics.suite = "stest";
    run.metrics.benchmark = "wl";
    run.metrics.instructions = 4000;
    run.metrics.cycles = 12345;
    run.metrics.ipc = 1.75;
    run.metrics.msgsPerKiloInst = 42.5;
    run.row = "{\"config\":\"Base-2L\",\"nested\":{\"q\":\"a\\\"b\"}}";
    return run;
}

TEST(ResultStore, RecordRoundTrip)
{
    const StoredRun run = sampleRun(0x0123456789abcdefull);
    const std::string line = ResultStore::recordToJson(run);
    EXPECT_EQ(line.find('\n'), std::string::npos) << "must be one line";

    StoredRun back;
    ASSERT_TRUE(ResultStore::recordFromJson(line, &back));
    EXPECT_EQ(back.key.hash, run.key.hash);
    EXPECT_EQ(back.status, run.status);
    EXPECT_EQ(back.seed, run.seed);
    EXPECT_EQ(back.attempts, run.attempts);
    EXPECT_EQ(back.error, run.error);
    EXPECT_EQ(back.metrics.config, run.metrics.config);
    EXPECT_EQ(back.metrics.instructions, run.metrics.instructions);
    EXPECT_EQ(back.metrics.cycles, run.metrics.cycles);
    EXPECT_DOUBLE_EQ(back.metrics.ipc, run.metrics.ipc);
    EXPECT_DOUBLE_EQ(back.metrics.msgsPerKiloInst,
                     run.metrics.msgsPerKiloInst);
    EXPECT_EQ(back.row, run.row) << "row must survive escaping";
}

TEST(ResultStore, FailureRecordRoundTrip)
{
    const StoredRun run = sampleRun(42, RunStatus::Timeout);
    StoredRun back;
    ASSERT_TRUE(ResultStore::recordFromJson(ResultStore::recordToJson(run),
                                            &back));
    EXPECT_EQ(back.status, RunStatus::Timeout);
    EXPECT_EQ(back.error, run.error);
}

TEST(ResultStore, PutLookupReloadLastWins)
{
    const std::string dir = freshDir("store_put");
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 0u);
        store.put(sampleRun(1));
        store.put(sampleRun(2));
        StoredRun updated = sampleRun(1);
        updated.attempts = 9;
        store.put(updated);  // replaces, same key
        EXPECT_EQ(store.size(), 2u);
    }
    // Fresh instance reloads from disk.
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 2u);
    StoredRun out;
    ASSERT_TRUE(store.lookup(RunKey{1}, &out));
    EXPECT_EQ(out.attempts, 9u) << "newest record must win";
    ASSERT_TRUE(store.lookup(RunKey{2}, &out));
    EXPECT_FALSE(store.lookup(RunKey{3}, &out));
}

TEST(ResultStore, ToleratesTornAndGarbageLines)
{
    const std::string dir = freshDir("store_torn");
    {
        ResultStore store(dir);
        store.put(sampleRun(1));
    }
    // Append garbage + a torn (no-newline) prefix of a real record to
    // the shard holding key 1 — what a SIGKILL mid-append leaves.
    const unsigned shard = 1 % ResultStore::kShards;
    char name[32];
    std::snprintf(name, sizeof(name), "/shard-%02u.jsonl", shard);
    {
        std::ofstream f(dir + name, std::ios::app);
        f << "not json at all\n";
        f << ResultStore::recordToJson(sampleRun(17)).substr(0, 25);
        // no trailing newline: torn write
    }
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 1u);
    StoredRun out;
    EXPECT_TRUE(store.lookup(RunKey{1}, &out));
    EXPECT_FALSE(store.lookup(RunKey{17}, &out));

    // The next put self-heals the shard: reload again, still clean.
    store.put(sampleRun(1 + ResultStore::kShards));  // same shard
    ResultStore healed(dir);
    EXPECT_EQ(healed.size(), 2u);
}

TEST(RunKeys, StableAndSensitiveToInputs)
{
    ::setenv("D2M_BUILD_FINGERPRINT", "test-fp-1", 1);
    const NamedWorkload wl = testWorkload();
    const SystemParams sp;
    const RunKey a = makeRunKey(ConfigKind::Base2L, wl, 500, 1000, sp);
    const RunKey b = makeRunKey(ConfigKind::Base2L, wl, 500, 1000, sp);
    EXPECT_EQ(a.hash, b.hash) << "same inputs, same key";
    EXPECT_EQ(a.hex().size(), 16u);

    // Every dimension of the cell identity must change the key.
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::D2mFs, wl, 500, 1000, sp).hash);
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::Base2L, wl, 501, 1000, sp).hash);
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::Base2L, wl, 500, 1001, sp).hash);
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::Base2L, testWorkload(8), 500, 1000,
                         sp).hash);
    NamedWorkload renamed = wl;
    renamed.name = "wl2";
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::Base2L, renamed, 500, 1000, sp).hash);
    SystemParams sp2;
    sp2.lat.dram = sp.lat.dram + 1;
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::Base2L, wl, 500, 1000, sp2).hash);
    SystemParams sp3;
    sp3.fault.enabled = true;
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::Base2L, wl, 500, 1000, sp3).hash);

    // A different binary fingerprint invalidates everything.
    ::setenv("D2M_BUILD_FINGERPRINT", "test-fp-2", 1);
    EXPECT_NE(a.hash,
              makeRunKey(ConfigKind::Base2L, wl, 500, 1000, sp).hash);
    ::unsetenv("D2M_BUILD_FINGERPRINT");
}

TEST(RunKeys, HexFormatting)
{
    EXPECT_EQ(RunKey{0}.hex(), "0000000000000000");
    EXPECT_EQ(RunKey{0xabc}.hex(), "0000000000000abc");
}

} // namespace
} // namespace d2m
