/**
 * @file
 * Campaign progress-stream tests (DESIGN.md §14): the JSONL records a
 * sweep emits to D2M_PROGRESS_JSON must follow the documented schema,
 * count every cell exactly once, and end with a "final":true record
 * that reconciles with the sweep outcome.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/progress.hh"
#include "harness/runner.hh"
#include "obs/json.hh"
#include "workload/suites.hh"

namespace d2m
{
namespace
{

std::vector<NamedWorkload>
tinyWorkloads(int n)
{
    WorkloadParams p;
    p.instructionsPerCore = 1'000;
    p.sharedFootprint = 32 * 1024;
    p.sharedFraction = 0.3;
    std::vector<NamedWorkload> v;
    for (int i = 0; i < n; ++i) {
        p.seed = 40 + i;
        v.push_back({"ptest", "wl" + std::to_string(i), p});
    }
    return v;
}

std::vector<json::Value>
readRecords(const std::string &path)
{
    std::ifstream in(path);
    std::vector<json::Value> recs;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        json::Value v;
        std::string err;
        EXPECT_TRUE(json::parse(line, v, err))
            << err << " in: " << line;
        recs.push_back(std::move(v));
    }
    return recs;
}

TEST(CampaignProgress, DisabledWithoutSink)
{
    ::unsetenv("D2M_PROGRESS_JSON");
    CampaignProgress::Config cfg = CampaignProgress::fromEnv(false);
    EXPECT_TRUE(cfg.jsonPath.empty());
    EXPECT_FALSE(cfg.tty);
    EXPECT_EQ(CampaignProgress::make(cfg, {}), nullptr)
        << "no sink -> null reporter, callers skip all bookkeeping";
}

TEST(CampaignProgress, SweepEmitsSchemaConformingRecords)
{
    const std::string path =
        testing::TempDir() + "progress_stream.jsonl";
    std::remove(path.c_str());
    ::setenv("D2M_PROGRESS_JSON", path.c_str(), 1);
    ::unsetenv("D2M_STORE_DIR");

    const std::vector<ConfigKind> configs = {ConfigKind::Base2L,
                                             ConfigKind::D2mNsR};
    const auto workloads = tinyWorkloads(2);
    SweepOptions opts;
    opts.verbose = false;
    opts.warmupInstsPerCore = 200;
    opts.jobs = 2;
    opts.runTimeoutMs = 0;
    opts.runRetries = 0;
    runSweep(configs, workloads, opts);
    ::unsetenv("D2M_PROGRESS_JSON");

    const auto recs = readRecords(path);
    const std::size_t total = configs.size() * workloads.size();
    ASSERT_GE(recs.size(), total + 2)
        << "initial + one per completion + final";

    std::uint64_t lastDone = 0;
    for (const auto &r : recs) {
        ASSERT_TRUE(r.isObject());
        // Every documented field is present on every record.
        for (const char *k :
             {"t", "elapsed_sec", "total", "done", "running", "ok",
              "failed", "timeout", "abandoned", "from_store", "retries",
              "kips", "eta_sec"}) {
            EXPECT_FALSE(r[k].isNull()) << "missing field " << k;
        }
        EXPECT_TRUE(r["cells"].isArray());
        EXPECT_EQ(static_cast<std::size_t>(r["total"].asNumber()),
                  total);
        const auto done = static_cast<std::uint64_t>(
            r["done"].asNumber());
        EXPECT_GE(done, lastDone) << "done must be monotonic";
        lastDone = done;
        for (const auto &c : r["cells"].array) {
            EXPECT_FALSE(c["suite"].isNull());
            EXPECT_FALSE(c["benchmark"].isNull());
            EXPECT_FALSE(c["config"].isNull());
            EXPECT_FALSE(c["insts"].isNull());
        }
        if (!r["finished"].isNull()) {
            EXPECT_EQ(r["finished"]["status"].asString(), "ok");
            EXPECT_EQ(r["finished"]["attempts"].asNumber(), 1.0);
            EXPECT_EQ(r["finished"]["suite"].asString(), "ptest");
        }
    }

    // First record: campaign start, nothing done or running.
    EXPECT_EQ(recs.front()["done"].asNumber(), 0.0);
    EXPECT_EQ(recs.front()["running"].asNumber(), 0.0);
    EXPECT_FALSE(recs.front()["final"].boolean);

    // Last record: final, fully reconciled with the sweep outcome.
    const auto &last = recs.back();
    EXPECT_TRUE(last["final"].boolean);
    EXPECT_EQ(static_cast<std::size_t>(last["done"].asNumber()), total);
    EXPECT_EQ(static_cast<std::size_t>(last["ok"].asNumber()), total);
    EXPECT_EQ(last["running"].asNumber(), 0.0);
    EXPECT_EQ(last["failed"].asNumber(), 0.0);

    // Exactly one completion record per cell.
    std::size_t finished = 0;
    for (const auto &r : recs)
        finished += r["finished"].isNull() ? 0 : 1;
    EXPECT_EQ(finished, total);

    std::remove(path.c_str());
}

TEST(CampaignProgress, AppendModeAccumulatesAcrossSweeps)
{
    // A killed-and-resumed campaign reopens the same file; records
    // from both processes must survive as one continuous history.
    const std::string path =
        testing::TempDir() + "progress_append.jsonl";
    std::remove(path.c_str());
    ::setenv("D2M_PROGRESS_JSON", path.c_str(), 1);

    const std::vector<ConfigKind> configs = {ConfigKind::Base2L};
    const auto workloads = tinyWorkloads(1);
    SweepOptions opts;
    opts.verbose = false;
    opts.warmupInstsPerCore = 200;
    opts.jobs = 1;
    opts.runTimeoutMs = 0;
    opts.runRetries = 0;
    runSweep(configs, workloads, opts);
    const std::size_t afterFirst = readRecords(path).size();
    runSweep(configs, workloads, opts);
    ::unsetenv("D2M_PROGRESS_JSON");

    const auto recs = readRecords(path);
    EXPECT_GT(afterFirst, 0u);
    EXPECT_GE(recs.size(), 2 * afterFirst)
        << "second sweep must append, not truncate";
    std::remove(path.c_str());
}

} // namespace
} // namespace d2m
