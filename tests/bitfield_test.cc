/**
 * @file
 * Unit tests for bit manipulation and integer math helpers.
 */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "common/intmath.hh"

namespace d2m
{
namespace
{

TEST(Bitfield, MaskBasics)
{
    EXPECT_EQ(mask(0, 0), 0x1u);
    EXPECT_EQ(mask(3, 0), 0xfu);
    EXPECT_EQ(mask(7, 4), 0xf0u);
    EXPECT_EQ(mask(63, 0), ~std::uint64_t(0));
    EXPECT_EQ(mask(63, 63), std::uint64_t(1) << 63);
}

TEST(Bitfield, BitsExtraction)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xff, 3, 1), 0x7u);
}

TEST(Bitfield, SingleBit)
{
    EXPECT_TRUE(bit(0x8, 3));
    EXPECT_FALSE(bit(0x8, 2));
    EXPECT_TRUE(bit(std::uint64_t(1) << 63, 63));
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xa), 0xa0u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0x0), 0xff0fu);
    // Field wider than the slot is truncated.
    EXPECT_EQ(insertBits(0, 3, 0, 0x1ff), 0xfu);
}

TEST(Bitfield, InsertExtractRoundTrip)
{
    for (unsigned first = 5; first < 30; first += 7) {
        for (unsigned last = 0; last <= first; last += 3) {
            const std::uint64_t field = 0x15 & mask(first - last, 0);
            const std::uint64_t v = insertBits(0x123456789abcull, first,
                                               last, field);
            EXPECT_EQ(bits(v, first, last), field)
                << "first=" << first << " last=" << last;
        }
    }
}

TEST(Bitfield, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xff), 8u);
    EXPECT_EQ(popCount(~std::uint64_t(0)), 64u);
    EXPECT_EQ(popCount(0x5555555555555555ull), 32u);
}

TEST(IntMath, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_TRUE(isPowerOf2(std::uint64_t(1) << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(IntMath, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(IntMath, DivCeilAndRounding)
{
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(roundDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(roundUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(roundUp(0x1200, 0x100), 0x1200u);
}

} // namespace
} // namespace d2m
