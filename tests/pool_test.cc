/**
 * @file
 * Tests for the work-stealing sweep pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "harness/pool.hh"

namespace d2m
{
namespace
{

TEST(Pool, RunsEveryJobExactlyOnce)
{
    WorkStealingPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    constexpr int n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (int i = 0; i < n; ++i)
        pool.submit([&hits, i] { hits[i].fetch_add(1); });
    pool.wait();
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Pool, WaitIsReusable)
{
    WorkStealingPool pool(2);
    std::atomic<int> count{0};
    pool.wait();  // nothing submitted: returns immediately
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(Pool, SingleWorkerRunsSerially)
{
    WorkStealingPool pool(1);
    std::atomic<int> inside{0};
    std::atomic<bool> overlapped{false};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&] {
            if (inside.fetch_add(1) != 0)
                overlapped = true;
            inside.fetch_sub(1);
        });
    }
    pool.wait();
    EXPECT_FALSE(overlapped.load());
}

TEST(Pool, StealsFromBusyWorkers)
{
    // Two workers, two jobs submitted round-robin (one per deque).
    // Job 0 blocks until job 1 has run; with stealing, worker 1 (or a
    // steal) completes job 1 while job 0 waits. Without stealing this
    // would deadlock only if both landed on one queue — the round-robin
    // submit plus this check pins the expected distribution.
    WorkStealingPool pool(2);
    std::atomic<bool> second_ran{false};
    pool.submit([&] {
        // Busy-wait (bounded) for the other job.
        for (int i = 0; i < 10'000 && !second_ran; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_TRUE(second_ran.load());
    });
    pool.submit([&] { second_ran = true; });
    pool.wait();
    EXPECT_TRUE(second_ran.load());
}

TEST(Pool, ManyMoreJobsThanWorkersWithUnevenSizes)
{
    WorkStealingPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    std::uint64_t expect = 0;
    for (int i = 0; i < 200; ++i) {
        expect += i;
        pool.submit([&sum, i] {
            if (i % 17 == 0)  // a few "long" jobs
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            sum.fetch_add(i);
        });
    }
    pool.wait();
    EXPECT_EQ(sum.load(), expect);
}

TEST(Pool, ZeroWorkerRequestClampsToOne)
{
    WorkStealingPool pool(0);
    EXPECT_EQ(pool.workers(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&] { ran = 1; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(Pool, DefaultJobsHonorsEnv)
{
    ::setenv("D2M_JOBS", "3", 1);
    EXPECT_EQ(WorkStealingPool::defaultJobs(), 3u);
    ::unsetenv("D2M_JOBS");
    EXPECT_GE(WorkStealingPool::defaultJobs(), 1u);
}

TEST(Pool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        WorkStealingPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        // No wait(): the destructor must still run everything.
    }
    EXPECT_EQ(count.load(), 100);
}

} // namespace
} // namespace d2m
