/**
 * @file
 * Extending the library: plugging a custom NS-LLC placement policy
 * into the D2M mechanism.
 *
 * The paper stresses that "D2M's contribution is in the mechanism,
 * not the policy" (footnote 3) — the split hierarchy decouples
 * placement from addressing, so policies are swappable. This example
 * implements a round-robin "capacity spreading" placement and
 * compares it with the paper's pressure heuristic on a
 * capacity-imbalanced workload.
 *
 * (Policies are value types on SystemParams hooks where exposed; the
 * placement policy interface lives in d2m/policies.hh. Here we
 * exercise the interface directly and then run whole systems with the
 * two built-in behaviors for comparison.)
 */

#include <cstdio>

#include "d2m/policies.hh"
#include "harness/runner.hh"

namespace
{

using namespace d2m;

/** A naive alternative policy: spread allocations round-robin. */
class RoundRobinPlacement : public NsPlacementPolicy
{
  public:
    explicit RoundRobinPlacement(unsigned slices) : slices_(slices) {}

    void recordReplacement(std::uint32_t) override {}
    void exchangeEpoch() override {}

    std::uint32_t
    chooseSlice(NodeId) override
    {
        return next_++ % slices_;
    }

  private:
    unsigned slices_;
    unsigned next_ = 0;
};

} // namespace

int
main()
{
    using namespace d2m;

    // Exercise the policy interface directly: the pressure policy
    // keeps an unpressured node local; round-robin does not.
    PressurePlacementPolicy pressure(4, 0.2, 1);
    RoundRobinPlacement rr(4);
    unsigned pressure_local = 0, rr_local = 0;
    for (int i = 0; i < 100; ++i) {
        pressure_local += pressure.chooseSlice(0) == 0;
        rr_local += rr.chooseSlice(0) == 0;
    }
    std::printf("policy probe (node 0, no pressure): pressure keeps "
                "%u%% local, round-robin %u%%\n\n",
                pressure_local, rr_local);

    // System-level comparison on an imbalanced workload: core 0 works
    // on a big footprint, the others are nearly idle. The pressure
    // heuristic lets core 0 overflow into its neighbors' slices.
    WorkloadParams heavy;
    heavy.instructionsPerCore = 100'000;
    heavy.privateFootprint = 3 << 20;
    heavy.streamFraction = 0.1;
    heavy.hotDataFraction = 0.55;
    heavy.warmDataFraction = 0.3;
    heavy.seed = 17;
    const NamedWorkload wl{"example", "imbalanced", heavy};

    SweepOptions local_only;
    local_only.verbose = false;
    local_only.baseParams.nsRemoteAllocShare = 0.0;  // never spill
    SweepOptions paper;
    paper.verbose = false;
    paper.baseParams.nsRemoteAllocShare = 0.20;      // 80/20 heuristic

    const Metrics m_local = runOne(ConfigKind::D2mNs, wl, local_only);
    const Metrics m_paper = runOne(ConfigKind::D2mNs, wl, paper);

    std::printf("%-28s %14s %16s\n", "D2M-NS placement", "always-local",
                "pressure 80/20");
    std::printf("%-28s %14.3f %16.3f\n", "IPC", m_local.ipc, m_paper.ipc);
    std::printf("%-28s %14.1f %16.1f\n", "avg miss latency",
                m_local.avgMissLatency, m_paper.avgMissLatency);
    std::printf("%-28s %14.0f %16.0f\n", "LLC services local %",
                m_local.nsLocalPct, m_paper.nsLocalPct);
    std::printf("\nSwap in your own NsPlacementPolicy / "
                "ReplicationPolicy (d2m/policies.hh) to explore the\n"
                "NUCA policy space on top of the D2M mechanism.\n");
    return 0;
}
