/**
 * @file
 * Mobile-browser scenario: the paper's motivating workload class for
 * the near-side LLC with replication.
 *
 * Chrome-style execution: multiple renderer processes (disjoint
 * address spaces) running the same multi-megabyte binary (physically
 * shared text). The instruction footprint dwarfs the L1-I, and an
 * out-of-order core cannot hide fetch misses — so where the code
 * lives in the hierarchy decides performance.
 *
 * The example sweeps the five systems and shows how the NS-LLC turns
 * into "a large private L2 for instructions" (Section V-D) once
 * replication is enabled.
 */

#include <cstdio>

#include "harness/runner.hh"

int
main()
{
    using namespace d2m;

    WorkloadParams params;
    params.instructionsPerCore = 120'000;
    params.codeFootprint = 2 << 20;   // 2 MiB of hot browser code
    params.branchiness = 0.4;
    params.hotCodeFraction = 0.8;
    params.warmCodeFraction = 0.17;
    params.avgRunLength = 9;
    params.privateFootprint = 2 << 20;
    params.disjointAsids = true;      // one process per core...
    params.sharedCode = true;         // ...sharing the binary's text
    params.memOpsPerInst = 0.3;
    params.seed = 7;
    const NamedWorkload wl{"example", "browser", params};

    std::printf("Mobile browser: 2 MiB shared text, 4 renderer "
                "processes\n\n");
    std::printf("%-10s %8s %10s %12s %14s %12s\n", "system", "IPC",
                "speedup", "L1I miss/ki", "near I-hits %", "msgs/ki");

    SweepOptions opts;
    opts.verbose = false;
    double base_ipc = 0;
    for (ConfigKind kind : allConfigs()) {
        const Metrics m = runOne(kind, wl, opts);
        if (kind == ConfigKind::Base2L)
            base_ipc = m.ipc;
        std::printf("%-10s %8.3f %+9.1f%% %12.1f %14.0f %12.1f\n",
                    m.config.c_str(), m.ipc,
                    100.0 * (m.ipc / base_ipc - 1), 10.0 * m.l1iMissPct,
                    m.nearHitRatioI, m.msgsPerKiloInst);
    }
    std::printf("\nReplication (D2M-NS-R) services instruction misses "
                "from the core's own LLC slice,\nrecovering the "
                "front-end stalls that dominate this workload class "
                "(paper Section V-D:\nMobile +21%%, Database +28%% over "
                "Base-2L).\n");
    return 0;
}
