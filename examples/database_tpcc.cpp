/**
 * @file
 * Database scenario: the paper's strongest result. TPC-C-like
 * execution (huge instruction footprint, shared buffer pool) is where
 * D2M-NS-R gains the most (+28% over Base-2L in the paper), because
 * the near-side LLC automatically acts as a large private instruction
 * L2 (1 MiB slice vs Base-3L's 256 KiB L2).
 *
 * This example uses the shipped `database/tpcc` preset and contrasts
 * Base-3L's dedicated L2 against D2M's borrowed slice capacity.
 */

#include <cstdio>

#include "harness/runner.hh"

int
main()
{
    using namespace d2m;

    NamedWorkload tpcc;
    for (const auto &wl : databaseSuite()) {
        if (wl.name == "tpcc")
            tpcc = wl;
    }

    std::printf("TPC-C-like workload: %0.1f MiB instruction footprint, "
                "%0.1f MiB shared buffer pool\n\n",
                tpcc.params.codeFootprint / 1048576.0,
                tpcc.params.sharedFootprint / 1048576.0);

    SweepOptions opts;
    opts.verbose = false;
    opts.instsPerCore = 120'000;

    std::printf("%-10s %8s %10s %12s %12s %10s\n", "system", "IPC",
                "speedup", "I near-hit%", "miss lat", "EDP");
    double base_ipc = 0, base_edp = 0;
    for (ConfigKind kind : allConfigs()) {
        const Metrics m = runOne(kind, tpcc, opts);
        if (kind == ConfigKind::Base2L) {
            base_ipc = m.ipc;
            base_edp = m.edp;
        }
        std::printf("%-10s %8.3f %+9.1f%% %12.0f %12.0f %9.2fx\n",
                    m.config.c_str(), m.ipc,
                    100.0 * (m.ipc / base_ipc - 1), m.nearHitRatioI,
                    m.avgMissLatency, m.edp / base_edp);
    }

    std::printf("\nThe 1 MiB NS slice out-captures Base-3L's 256 KiB L2 "
                "for the instruction\nworking set, without Base-3L's "
                "extra level of lookup latency or its ~1 MiB\nof "
                "additional SRAM per four cores (paper Figure 4 and "
                "Section V-D).\n");
    return 0;
}
