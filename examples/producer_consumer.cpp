/**
 * @file
 * Producer/consumer coherence walkthrough at single-access
 * granularity: drives a D2M system by hand (no workload generator)
 * and narrates the protocol events as a region moves through the
 * Table II classes: uncached -> private -> shared -> (pruned back to)
 * private.
 *
 * Useful as a protocol study companion to the paper's Appendix.
 */

#include <cstdio>

#include "d2m/d2m_system.hh"
#include "harness/configs.hh"

namespace
{

using namespace d2m;

const char *
className(RegionClass c)
{
    switch (c) {
      case RegionClass::Uncached: return "uncached";
      case RegionClass::Untracked: return "untracked";
      case RegionClass::Private: return "private";
      case RegionClass::Shared: return "shared";
    }
    return "?";
}

void
report(D2mSystem &sys, std::uint64_t pregion, const char *what)
{
    const auto &ev = sys.events();
    std::printf("  %-44s region=%-9s [B=%llu C=%llu D2=%llu D4=%llu "
                "inv=%llu]\n",
                what, className(sys.regionClass(pregion)),
                static_cast<unsigned long long>(ev.b.value()),
                static_cast<unsigned long long>(ev.c.value()),
                static_cast<unsigned long long>(ev.d2.value()),
                static_cast<unsigned long long>(ev.d4.value()),
                static_cast<unsigned long long>(
                    sys.hierStats().invalidationsReceived.value()));
}

MemAccess
mk(AccessType t, Addr v, std::uint64_t val = 0)
{
    MemAccess a;
    a.type = t;
    a.vaddr = v;
    a.storeValue = val;
    return a;
}

} // namespace

int
main()
{
    using namespace d2m;

    D2mSystem sys("d2m", paramsFor(ConfigKind::D2mFs));
    const Addr buf = 0x6000'0000;  // the shared buffer
    const std::uint64_t pregion =
        sys.pageTable().translate(0, buf) >> sys.params().regionShift();

    std::printf("D2M protocol walkthrough (one region, two cores)\n\n");

    report(sys, pregion, "initial state");

    sys.access(0, mk(AccessType::STORE, buf, 1001), 0);
    report(sys, pregion, "core 0 produces item (case D4 + write)");

    sys.access(0, mk(AccessType::STORE, buf + 64, 1002), 1);
    report(sys, pregion, "core 0 produces item 2 (case B, direct)");

    const auto r1 = sys.access(1, mk(AccessType::LOAD, buf), 2);
    std::printf("    core 1 consumed %llu directly from core 0's L1\n",
                static_cast<unsigned long long>(r1.loadValue));
    report(sys, pregion, "core 1 consumes item (case D2 transition)");

    const auto r2 = sys.access(1, mk(AccessType::LOAD, buf + 64), 3);
    std::printf("    core 1 consumed %llu (case A: direct-to-master)\n",
                static_cast<unsigned long long>(r2.loadValue));
    report(sys, pregion, "core 1 consumes item 2 (case A)");

    sys.access(0, mk(AccessType::STORE, buf, 2001), 4);
    report(sys, pregion, "core 0 overwrites item (case C: invalidate)");

    const auto r3 = sys.access(1, mk(AccessType::LOAD, buf), 5);
    std::printf("    core 1 re-reads and sees %llu (coherent)\n",
                static_cast<unsigned long long>(r3.loadValue));
    report(sys, pregion, "core 1 re-reads after invalidation");

    std::string why;
    if (!sys.checkInvariants(why)) {
        std::printf("\nINVARIANT VIOLATION: %s\n", why.c_str());
        return 1;
    }
    std::printf("\nall D2M invariants hold (deterministic LIs, single "
                "master, PB soundness)\n");
    return 0;
}
