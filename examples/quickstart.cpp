/**
 * @file
 * Quickstart: build a D2M system, run a small workload on it, and
 * print the headline statistics.
 *
 *   $ ./quickstart
 *
 * Walks through the three core library entry points:
 *  1. configure a system (harness/configs.hh),
 *  2. generate per-core access streams (workload/),
 *  3. drive the cores to completion and collect metrics (cpu/,
 *     harness/metrics.hh).
 */

#include <cstdio>

#include "harness/runner.hh"

int
main()
{
    using namespace d2m;

    // 1. Describe a workload: four cores sharing a 1 MiB heap with
    //    moderate write sharing on top of private working sets.
    WorkloadParams params;
    params.instructionsPerCore = 100'000;
    params.codeFootprint = 64 * 1024;
    params.privateFootprint = 512 * 1024;
    params.sharedFootprint = 1 << 20;
    params.sharedFraction = 0.15;
    params.seed = 42;
    const NamedWorkload wl{"example", "quickstart", params};

    // 2. Run it on the classic baseline and on the full D2M system.
    SweepOptions opts;
    opts.verbose = false;
    const Metrics base = runOne(ConfigKind::Base2L, wl, opts);
    const Metrics d2m = runOne(ConfigKind::D2mNsR, wl, opts);

    // 3. Compare.
    std::printf("workload: %llu instructions on %u cores\n",
                static_cast<unsigned long long>(base.instructions), 4u);
    std::printf("%-28s %12s %12s\n", "", "Base-2L", "D2M-NS-R");
    std::printf("%-28s %12.3f %12.3f\n", "IPC", base.ipc, d2m.ipc);
    std::printf("%-28s %12.1f %12.1f\n", "NoC msgs / kilo-inst",
                base.msgsPerKiloInst, d2m.msgsPerKiloInst);
    std::printf("%-28s %12.1f %12.1f\n", "avg L1 miss latency (cyc)",
                base.avgMissLatency, d2m.avgMissLatency);
    std::printf("%-28s %12.2f %12.2f\n", "energy (uJ)",
                base.energyPj / 1e6, d2m.energyPj / 1e6);
    std::printf("%-28s %12s %12.0f%%\n", "misses to private regions",
                "-", d2m.privateMissPct);
    std::printf("%-28s %12s %12.0f%%\n", "LLC services from own slice",
                "-", d2m.nsLocalPct);
    std::printf("\nD2M-NS-R vs Base-2L: speedup %+.1f%%, traffic %.2fx, "
                "EDP %.2fx\n",
                100.0 * (d2m.ipc / base.ipc - 1),
                d2m.msgsPerKiloInst / base.msgsPerKiloInst,
                d2m.edp / base.edp);

    if (d2m.valueErrors || d2m.invariantErrors) {
        std::printf("COHERENCE ERRORS DETECTED\n");
        return 1;
    }
    std::printf("coherence: all loads matched the golden memory image\n");
    return 0;
}
